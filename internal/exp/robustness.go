package exp

import (
	"fmt"

	"explink/internal/core"
	"explink/internal/stats"
	"explink/internal/topo"
)

// RobustnessPoint is the latency distribution after k express-link failures.
type RobustnessPoint struct {
	Failures int
	Mean     float64 // mean L_avg over failure trials
	Worst    float64 // worst trial
	MeanPct  float64 // mean degradation vs the intact design, %
}

// RobustnessResult is an extension experiment (not in the paper): express
// links are extra physical wires that can fail or be disabled (e.g. for
// power gating); because every row and column keeps its local links, routing
// tables can always be recomputed around dead express links. This experiment
// measures how gracefully the optimized design degrades, and checks it never
// falls below the mesh baseline.
type RobustnessResult struct {
	N      int
	C      int
	Intact float64
	Mesh   float64
	Points []RobustnessPoint
	Trials int
}

// Robustness kills k random express links (network-wide) and re-evaluates
// the analytic average latency with rerouted tables.
func Robustness(o Options) (RobustnessResult, error) {
	const n = 8
	s := o.solverFor(n)
	best, _, err := s.Optimize(o.ctx(), core.DCSA)
	if err != nil {
		return RobustnessResult{}, err
	}
	base := s.Topology(best)
	intact, err := s.Cfg.EvalTopology(base, best.C)
	if err != nil {
		return RobustnessResult{}, err
	}
	// The worst possible damage leaves only the local links, still at the
	// design's narrow width (dead wires cannot be reclaimed as bandwidth).
	mesh, err := s.Cfg.EvalRow(topo.MeshRow(n), best.C)
	if err != nil {
		return RobustnessResult{}, err
	}

	trials := 20
	failures := []int{1, 2, 4, 8, 16}
	if o.Quick {
		trials = 5
		failures = []int{1, 4}
	}
	out := RobustnessResult{N: n, C: best.C, Intact: intact.Total, Mesh: mesh.Total, Trials: trials}
	rng := stats.NewRNG(stats.MixSeed(o.Seed, 0xfa11))
	for _, k := range failures {
		var mean stats.Running
		worst := 0.0
		for trial := 0; trial < trials; trial++ {
			damaged := killRandomLinks(base, k, rng)
			ev, err := s.Cfg.EvalTopology(damaged, best.C)
			if err != nil {
				return out, err
			}
			mean.Add(ev.Total)
			if ev.Total > worst {
				worst = ev.Total
			}
		}
		out.Points = append(out.Points, RobustnessPoint{
			Failures: k,
			Mean:     mean.Mean(),
			Worst:    worst,
			MeanPct:  100 * (mean.Mean() - intact.Total) / intact.Total,
		})
	}
	return out, nil
}

// killRandomLinks removes k distinct express links, drawn uniformly over all
// line instances of the network. If the network runs out of express links the
// remainder of the budget is ignored.
func killRandomLinks(t topo.Topology, k int, rng *stats.RNG) topo.Topology {
	out := topo.Topology{Name: t.Name + "-damaged", W: t.W, H: t.H,
		Rows: make([]topo.Row, t.H), Cols: make([]topo.Row, t.W)}
	for y := 0; y < t.H; y++ {
		out.Rows[y] = t.Rows[y].Clone()
	}
	for x := 0; x < t.W; x++ {
		out.Cols[x] = t.Cols[x].Clone()
	}
	for dead := 0; dead < k; dead++ {
		// Collect every (line, span) choice still alive.
		type site struct {
			col  bool
			line int
			idx  int
		}
		var sites []site
		for i := 0; i < t.H; i++ {
			for j := range out.Rows[i].Express {
				sites = append(sites, site{false, i, j})
			}
		}
		for i := 0; i < t.W; i++ {
			for j := range out.Cols[i].Express {
				sites = append(sites, site{true, i, j})
			}
		}
		if len(sites) == 0 {
			break
		}
		pick := sites[rng.Intn(len(sites))]
		if pick.col {
			out.Cols[pick.line] = out.Cols[pick.line].Remove(pick.idx)
		} else {
			out.Rows[pick.line] = out.Rows[pick.line].Remove(pick.idx)
		}
	}
	return out
}

// Report formats the robustness study.
func (r RobustnessResult) Report() *stats.Report {
	rep := stats.NewReport("robust")
	t := rep.Add(stats.NewTable(
		fmt.Sprintf("Extension: express-link failures on the %dx%d D&C_SA design (C=%d), %d trials each",
			r.N, r.N, r.C, r.Trials),
		"failed links", "mean L_avg", "worst L_avg", "degradation %"))
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", p.Failures),
			fmt.Sprintf("%.2f", p.Mean),
			fmt.Sprintf("%.2f", p.Worst),
			fmt.Sprintf("%+.2f", p.MeanPct))
	}
	t.AddNotef("intact design: %.2f; floor with every express link dead (locals only, same width): %.2f", r.Intact, r.Mesh)
	return rep
}
