package exp

import (
	"context"
	"fmt"

	"explink/internal/anneal"
	"explink/internal/dnc"
	"explink/internal/model"
	"explink/internal/stats"
	"explink/internal/topo"
)

// Fig7Point is one x-position of the runtime-comparison curves: the best
// full-network latency each scheme reaches within an evaluation budget.
type Fig7Point struct {
	// Budget is the normalized runtime: total placement evaluations divided
	// by the cost of the initial-solution procedure I(n, C).
	Budget float64
	DCSA   float64
	OnlySA float64
}

// Fig7Curve is the comparison for one network size.
type Fig7Curve struct {
	N         int
	C         int
	InitEvals int64 // evaluations of I(n, C): the runtime unit
	Points    []Fig7Point
}

// Fig7Result reproduces Figure 7: placement quality as a function of allowed
// runtime for D&C_SA and OnlySA on 8x8 and 16x16 networks. Runtime is
// measured in placement evaluations (the dominant cost of both schemes) and
// normalized to the cost of I(n, 4), as in the paper.
type Fig7Result struct {
	Curves []Fig7Curve
}

// Fig7 runs both schemes at a ladder of budgets. Each scheme restarts
// annealing (fresh random stream, keeping the best placement seen) until its
// budget is exhausted, which is how "allowing more runtime" is realized.
func Fig7(o Options) (Fig7Result, error) {
	sizes := []int{8, 16}
	budgets := []float64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000}
	if o.Quick {
		sizes = []int{8}
		budgets = []float64{1, 10, 100}
	}
	const c = 4 // the paper normalizes to I(8,4) and I(16,4)

	var out Fig7Result
	for _, n := range sizes {
		s := o.solverFor(n)
		init := dnc.Initial(n, c, s.Cfg.Params)
		curve := Fig7Curve{N: n, C: c, InitEvals: init.Evals}
		for _, budget := range budgets {
			evalBudget := int64(budget * float64(init.Evals))
			d, err := bestWithinBudget(o.ctx(), s.Cfg, c, init, evalBudget, o.Seed, true)
			if err != nil {
				return out, err
			}
			g, err := bestWithinBudget(o.ctx(), s.Cfg, c, init, evalBudget, o.Seed, false)
			if err != nil {
				return out, err
			}
			curve.Points = append(curve.Points, Fig7Point{Budget: budget, DCSA: d, OnlySA: g})
		}
		out.Curves = append(out.Curves, curve)
	}
	return out, nil
}

// bestWithinBudget runs one scheme under a total evaluation budget and
// returns the best full-network latency found. For D&C_SA the budget first
// pays for the initial solution; remaining evaluations fund annealing
// restarts. OnlySA spends everything on annealing from random states.
func bestWithinBudget(ctx context.Context, cfg model.Config, c int, init dnc.Result, budget int64, seed uint64, dcsa bool) (float64, error) {
	width, err := cfg.BW.Width(c)
	if err != nil {
		return 0, err
	}
	ser := model.Serialization(cfg.Mix, width)
	obj := func(r topo.Row) float64 { return model.RowMean(r, cfg.Params) }

	var spent int64
	best := 0.0
	haveBest := false
	consider := func(mean float64) {
		total := 2*mean + ser
		if !haveBest || total < best {
			best, haveBest = total, true
		}
	}

	var initMatrix *topo.ConnMatrix
	if dcsa {
		spent += init.Evals
		if spent > budget {
			// Not enough budget even for the initial procedure: the paper's
			// x-axis starts at 1 unit, exactly the cost of I(n, C).
			consider(init.Mean)
			return best, nil
		}
		consider(init.Mean)
		m, err := topo.MatrixFromRow(init.Row, c)
		if err != nil {
			return 0, err
		}
		initMatrix = m
	}

	sched := anneal.DefaultSchedule()
	restart := 0
	for spent < budget {
		remaining := budget - spent
		moves := sched.Moves
		if int64(moves) > remaining-1 {
			moves = int(remaining - 1)
		}
		if moves <= 0 {
			break
		}
		rng := stats.NewRNG(stats.MixSeed(seed, uint64(c), uint64(restart), boolToU64(dcsa)))
		var m *topo.ConnMatrix
		if dcsa {
			m = initMatrix.Clone()
		} else {
			m = topo.NewConnMatrix(cfg.N, c)
			m.Randomize(func() bool { return rng.Bool(0.5) })
		}
		res := anneal.Minimize(ctx, m, obj, sched.WithMoves(moves), rng, false)
		spent += res.Evals
		consider(res.Obj)
		restart++
		if m.Bits() == 0 {
			break
		}
	}
	return best, nil
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Report formats one table per network size.
func (r Fig7Result) Report() *stats.Report {
	rep := stats.NewReport("fig7")
	for _, c := range r.Curves {
		t := rep.Add(stats.NewTable(
			fmt.Sprintf("Fig.7 (%dx%d): best latency vs normalized runtime [unit = I(%d,%d) = %d evals]",
				c.N, c.N, c.N, c.C, c.InitEvals),
			"runtime", "D&C_SA", "OnlySA"))
		for _, p := range c.Points {
			t.AddRowf(fmt.Sprintf("%.0f", p.Budget), p.DCSA, p.OnlySA)
		}
	}
	return rep
}
