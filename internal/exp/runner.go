package exp

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"explink/internal/obs"
	"explink/internal/runctl"
	"explink/internal/stats"
)

// Outcome is one scheduled experiment's result slot.
type Outcome struct {
	Exp     Experiment
	Rep     *stats.Report
	Err     error
	Elapsed time.Duration
}

// metricSet holds the suite runner's exported instruments. Scheduling state
// (queued/inflight) is visible live, so a stalled suite shows exactly where
// the pool is stuck; per-experiment wall time lands on the exp_run timer.
type metricSet struct {
	started   *obs.Counter // exp_started_total
	finished  *obs.Counter // exp_finished_total
	failed    *obs.Counter // exp_failed_total
	inflight  *obs.Gauge   // exp_inflight
	queued    *obs.Gauge   // exp_queued
	runTime   *obs.Timer   // exp_run_total / exp_run_seconds_total
	suiteTime *obs.Timer   // exp_suite_total / exp_suite_seconds_total
}

var expMet atomic.Pointer[metricSet]

// EnableMetrics registers the suite runner's metrics on reg and turns on
// collection for every subsequent RunAll. A nil registry disables metrics
// again.
func EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		expMet.Store(nil)
		return
	}
	expMet.Store(&metricSet{
		started:   reg.Counter("exp_started_total", "experiments started"),
		finished:  reg.Counter("exp_finished_total", "experiments finished successfully"),
		failed:    reg.Counter("exp_failed_total", "experiments that returned an error"),
		inflight:  reg.Gauge("exp_inflight", "experiments currently running"),
		queued:    reg.Gauge("exp_queued", "experiments waiting for a worker slot"),
		runTime:   reg.Timer("exp_run", "per-experiment wall time"),
		suiteTime: reg.Timer("exp_suite", "whole-suite wall time"),
	})
}

// RunAll executes the selected experiments on a worker pool of the given
// width. Results land in registry order regardless of completion order; a
// cancelled ctx fails the unstarted experiments quickly while finished ones
// keep their results (ctx, when non-nil, overrides opts.Ctx).
//
// Progress is reported two ways, both optional: metrics when EnableMetrics
// was called, and JSON-lines events on ev (suite.start, experiment.start,
// experiment.finish, experiment.error, suite.finish) when ev is non-nil.
func RunAll(ctx context.Context, sel []Experiment, opts Options, parallel int, ev *obs.EventWriter) []Outcome {
	if parallel < 1 {
		parallel = 1
	}
	if ctx != nil {
		opts.Ctx = ctx
	}
	runCtx := opts.ctx()
	m := expMet.Load()
	suiteStart := time.Now()
	ev.Emit("suite.start", map[string]any{"experiments": len(sel), "parallel": parallel})
	if m != nil {
		// Add, not Set: concurrent suites (e.g. the daemon or the sweep
		// fabric running several ExpRequests at once) share one gauge, and a
		// Set from one suite would erase the other's backlog.
		m.queued.Add(int64(len(sel)))
	}

	out := make([]Outcome, len(sel))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, e := range sel {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			// Honour the cancellation contract while queued: a cancelled ctx
			// must fail unstarted experiments quickly, so waiting for a slot
			// races against ctx instead of always acquiring first. The slot
			// re-check after acquiring closes the window where the semaphore
			// and the cancellation are simultaneously ready.
			select {
			case sem <- struct{}{}:
				if runCtx.Err() != nil {
					<-sem
					out[i] = cancelOutcome(e, runCtx, m, ev)
					return
				}
			case <-runCtx.Done():
				out[i] = cancelOutcome(e, runCtx, m, ev)
				return
			}
			defer func() { <-sem }()
			if m != nil {
				m.queued.Add(-1)
				m.inflight.Add(1)
				m.started.Inc()
			}
			ev.Emit("experiment.start", map[string]any{"name": e.Name, "section": e.Section})
			start := time.Now()
			rep, err := e.Run(opts)
			elapsed := time.Since(start)
			out[i] = Outcome{Exp: e, Rep: rep, Err: err, Elapsed: elapsed}
			if m != nil {
				m.inflight.Add(-1)
				m.runTime.Observe(elapsed)
				if err != nil {
					m.failed.Inc()
				} else {
					m.finished.Inc()
				}
			}
			if err != nil {
				ev.Emit("experiment.error", map[string]any{
					"name": e.Name, "seconds": elapsed.Seconds(), "error": err.Error()})
			} else {
				ev.Emit("experiment.finish", map[string]any{
					"name": e.Name, "seconds": elapsed.Seconds()})
			}
		}(i, e)
	}
	wg.Wait()

	failed := 0
	for _, oc := range out {
		if oc.Err != nil {
			failed++
		}
	}
	if m != nil {
		m.suiteTime.Observe(time.Since(suiteStart))
	}
	ev.Emit("suite.finish", map[string]any{
		"experiments": len(sel), "failed": failed, "seconds": time.Since(suiteStart).Seconds()})
	return out
}

// cancelOutcome fills an experiment's slot without running it: the suite
// context died while the experiment was still waiting for a worker slot. The
// error classifies as runctl.ErrCancelled, same as an experiment interrupted
// mid-run, and the scheduling metrics/events account for the slot so gauges
// return to zero.
func cancelOutcome(e Experiment, ctx context.Context, m *metricSet, ev *obs.EventWriter) Outcome {
	err := runctl.Cancelled(ctx)
	if m != nil {
		m.queued.Add(-1)
		m.failed.Inc()
	}
	ev.Emit("experiment.error", map[string]any{"name": e.Name, "seconds": 0.0, "error": err.Error()})
	return Outcome{Exp: e, Err: err}
}
