package bnb

import (
	"math"
	"testing"

	"explink/internal/model"
	"explink/internal/topo"
)

var p = model.DefaultParams()

func TestOptimalRowC1IsMesh(t *testing.T) {
	res := OptimalRow(8, 1, p)
	if !res.Row.Equal(topo.MeshRow(8)) {
		t.Fatalf("C=1 optimum = %v", res.Row)
	}
	if math.Abs(res.Mean-10.5) > 1e-9 {
		t.Fatalf("mesh mean = %g", res.Mean)
	}
}

func TestOptimalRow42(t *testing.T) {
	// P(4,2): one express link fits; 0-2, 1-3 and 0-3 all give mean 4.25.
	res := OptimalRow(4, 2, p)
	if math.Abs(res.Mean-4.25) > 1e-9 {
		t.Fatalf("P(4,2) mean = %g, want 4.25", res.Mean)
	}
	if err := res.Row.Validate(2); err != nil {
		t.Fatal(err)
	}
	if len(res.Row.Express) != 1 {
		t.Fatalf("P(4,2) optimum uses %d spans", len(res.Row.Express))
	}
}

func TestOptimalRespectsLimit(t *testing.T) {
	for _, tc := range []struct{ n, c int }{{6, 2}, {6, 3}, {8, 2}, {8, 3}} {
		res := OptimalRow(tc.n, tc.c, p)
		if err := res.Row.Validate(tc.c); err != nil {
			t.Fatalf("P(%d,%d): %v", tc.n, tc.c, err)
		}
		if res.Evals <= 0 {
			t.Fatalf("P(%d,%d) evals = %d", tc.n, tc.c, res.Evals)
		}
	}
}

func TestOptimalMonotoneInC(t *testing.T) {
	// A larger link limit can only help the head latency.
	prev := math.Inf(1)
	for _, c := range []int{1, 2, 3, 4} {
		res := OptimalRow(8, c, p)
		if res.Mean > prev+1e-9 {
			t.Fatalf("optimum worsened at C=%d: %g > %g", c, res.Mean, prev)
		}
		prev = res.Mean
	}
}

func TestOptimalBeatsFixedDesigns(t *testing.T) {
	// The optimum at the HFB's own link budget must be at least as good as
	// the HFB row.
	hfb := topo.HFBRow(8)
	c := hfb.MaxCrossSection()
	res := OptimalRow(8, c, p)
	if hfbMean := model.RowMean(hfb, p); res.Mean > hfbMean+1e-9 {
		t.Fatalf("optimum %g worse than HFB %g", res.Mean, hfbMean)
	}
}

func TestExhaustiveMatrixMatchesBranchAndBound(t *testing.T) {
	// The paper claims the connection-matrix space loses no valid solutions;
	// its optimum must therefore match the raw-space optimum.
	for _, tc := range []struct{ n, c int }{{4, 2}, {5, 2}, {6, 2}, {6, 3}, {8, 2}, {8, 3}} {
		raw := OptimalRow(tc.n, tc.c, p)
		mat := ExhaustiveMatrix(tc.n, tc.c, p)
		if math.Abs(raw.Mean-mat.Mean) > 1e-9 {
			t.Fatalf("P(%d,%d): raw optimum %g != matrix optimum %g (rows %v vs %v)",
				tc.n, tc.c, raw.Mean, mat.Mean, raw.Row, mat.Row)
		}
	}
}

func TestExhaustiveMatrixEvalCount(t *testing.T) {
	res := ExhaustiveMatrix(6, 2, p)
	if res.Evals != 16 { // 2^((6-2)*(2-1))
		t.Fatalf("evals = %d, want 16", res.Evals)
	}
}

func TestExhaustiveMatrixPanicsWhenHuge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized space")
		}
	}()
	ExhaustiveMatrix(16, 4, p)
}

func TestAllSpans(t *testing.T) {
	spans := allSpans(5)
	// C(5,2) - 4 adjacent pairs = 6.
	if len(spans) != 6 {
		t.Fatalf("allSpans(5) = %v", spans)
	}
	for _, s := range spans {
		if !s.Valid(5) {
			t.Fatalf("invalid span %v", s)
		}
	}
}

func TestOptimalRowDegenerate(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		res := OptimalRow(n, 4, p)
		if err := res.Row.Validate(4); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	if res := OptimalRow(3, 2, p); len(res.Row.Express) != 1 {
		t.Fatalf("P(3,2) should place the single 0-2 span, got %v", res.Row)
	}
}

func TestOptimalPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	OptimalRow(0, 1, p)
}
