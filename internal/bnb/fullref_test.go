package bnb

import (
	"os"
	"testing"
	"time"

	"explink/internal/model"
	"explink/internal/topo"
)

// fullSearcher is the pre-incremental reference: the same branch and bound
// with every bound and leaf scored by a full scratch-backed evaluation. It
// pins the two-evaluator DFS bit-identical and backs the perf smoke below.
type fullSearcher struct {
	n, c     int
	obj      func(topo.Row) float64
	spans    []topo.Span
	cuts     []int
	best     Result
	evals    int64
	useBound bool
}

func fullOptimalRow(n, c int, p model.Params, useBound bool) Result {
	mesh := topo.MeshRow(n)
	st := &fullSearcher{n: n, c: c, obj: model.RowObjective(p), useBound: useBound}
	st.spans = allSpans(n)
	st.cuts = make([]int, maxInt(n-1, 0))
	st.best = Result{Row: mesh, Mean: st.obj(mesh)}
	st.evals = 1
	if c > 1 {
		st.search(0, topo.Row{N: n})
	}
	st.best.Evals = st.evals
	st.best.Row = st.best.Row.Canonical()
	return st.best
}

func (s *fullSearcher) eval(r topo.Row) float64 {
	s.evals++
	return s.obj(r)
}

func (s *fullSearcher) search(idx int, cur topo.Row) {
	if s.useBound {
		super := cur.Clone()
		super.Express = append(super.Express, s.spans[idx:]...)
		if s.eval(super) >= s.best.Mean {
			return
		}
	}
	if idx == len(s.spans) {
		if m := s.eval(cur); m < s.best.Mean {
			s.best.Mean = m
			s.best.Row = cur.Clone()
		}
		return
	}
	sp := s.spans[idx]
	feasible := true
	for k := sp.From; k < sp.To; k++ {
		if s.cuts[k]+1 > s.c-1 {
			feasible = false
			break
		}
	}
	if feasible {
		for k := sp.From; k < sp.To; k++ {
			s.cuts[k]++
		}
		s.search(idx+1, cur.Add(sp))
		for k := sp.From; k < sp.To; k++ {
			s.cuts[k]--
		}
	}
	s.search(idx+1, cur)
}

// TestOptimalRowBitIdenticalToFullEvaluation pins the incremental DFS to the
// full-evaluation reference: identical optimum, bit-identical mean, identical
// evaluation count — for both the bounded search and the feasibility-only
// exhaustive variant.
func TestOptimalRowBitIdenticalToFullEvaluation(t *testing.T) {
	p := model.DefaultParams()
	for _, tc := range []struct{ n, c int }{
		{4, 2}, {4, 4}, {5, 3}, {6, 2}, {6, 3}, {7, 2}, {8, 2},
	} {
		for _, useBound := range []bool{true, false} {
			got := optimalRow(tc.n, tc.c, p, useBound)
			want := fullOptimalRow(tc.n, tc.c, p, useBound)
			if !got.Row.Equal(want.Row) {
				t.Fatalf("P(%d,%d) bound=%v: row %v != reference %v", tc.n, tc.c, useBound, got.Row, want.Row)
			}
			if got.Mean != want.Mean {
				t.Fatalf("P(%d,%d) bound=%v: mean %v != reference %v (not bit-identical)",
					tc.n, tc.c, useBound, got.Mean, want.Mean)
			}
			if got.Evals != want.Evals {
				t.Fatalf("P(%d,%d) bound=%v: evals %d != reference %d", tc.n, tc.c, useBound, got.Evals, want.Evals)
			}
		}
	}
}

// TestBnBNotSlowerThanFullEval is the CI perf smoke for branch and bound:
// the two-evaluator incremental DFS must not lose to the full-evaluation
// reference. Gated behind EXPLINK_BENCH_SMOKE like the other perf smokes.
func TestBnBNotSlowerThanFullEval(t *testing.T) {
	if os.Getenv("EXPLINK_BENCH_SMOKE") == "" {
		t.Skip("set EXPLINK_BENCH_SMOKE=1 to run the perf smoke")
	}
	p := model.DefaultParams()
	const n, c = 7, 3
	bestInc, bestFull := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 3; round++ {
		t0 := time.Now()
		OptimalRow(n, c, p)
		if d := time.Since(t0); d < bestInc {
			bestInc = d
		}
		t0 = time.Now()
		fullOptimalRow(n, c, p, true)
		if d := time.Since(t0); d < bestFull {
			bestFull = d
		}
	}
	t.Logf("P(%d,%d): incremental %v, full %v (%.2fx)", n, c, bestInc, bestFull,
		float64(bestFull)/float64(bestInc))
	if float64(bestInc) > float64(bestFull)*1.10 {
		t.Fatalf("incremental BnB slower than full eval: %v vs %v", bestInc, bestFull)
	}
}
