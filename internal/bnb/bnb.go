// Package bnb provides exhaustive optimal solvers for the one-dimensional
// express-link placement problem P̃(n, C). They serve two roles from the
// paper: the base case of the divide-and-conquer initial-solution procedure
// I(n, C) (Section 4.4.1, "the local optimal solution can be located by
// enumeration methods such as simple branch and bound"), and the optimal
// reference that Fig. 12 compares D&C_SA against.
package bnb

import (
	"fmt"

	"explink/internal/model"
	"explink/internal/route"
	"explink/internal/topo"
)

// Result is an optimal placement along with its objective value and the
// number of placement evaluations spent finding it (the runtime proxy used
// in Fig. 7 and Fig. 12).
type Result struct {
	Row   topo.Row
	Mean  float64 // average row head latency (the P̃ objective)
	Evals int64
}

// OptimalRow finds the placement minimizing the average head latency of a
// row of n routers under link limit c, by branch and bound over the raw span
// space: spans are considered in (From, To) order; each is included or
// excluded; infeasible inclusions (cross-section over the limit) are cut, and
// subtrees are pruned when even the superset of all remaining spans cannot
// beat the incumbent (adding links never increases any shortest path, so
// that superset is an admissible bound).
//
// Duplicate spans are never considered: a duplicate consumes cross-section
// capacity without changing any distance, so some optimum is duplicate-free.
func OptimalRow(n, c int, p model.Params) Result {
	return optimalRow(n, c, p, true)
}

// ExhaustiveRaw finds the same optimum with feasibility pruning only — the
// plain "exhaustive search algorithm with branch and bound" the paper times
// in Fig. 12. It visits (and evaluates) every feasible duplicate-free
// placement, so its evaluation count measures the size of the raw search
// space rather than the cleverness of the bound.
func ExhaustiveRaw(n, c int, p model.Params) Result {
	return optimalRow(n, c, p, false)
}

func optimalRow(n, c int, p model.Params, useBound bool) Result {
	if n < 1 || c < 1 {
		panic(fmt.Sprintf("bnb: invalid problem P(%d,%d)", n, c))
	}
	mesh := topo.MeshRow(n)
	st := &searcher{n: n, c: c, p: p, cur: route.NewIncremental(p.Route()), useBound: useBound}
	st.spans = allSpans(n)
	st.cuts = make([]int, maxInt(n-1, 0))
	st.cur.Reset(mesh)
	st.best = Result{Row: mesh, Mean: st.cur.Mean(), Evals: 0}
	st.evals = 1 // the mesh evaluation above
	if c > 1 {
		if useBound {
			st.super = route.NewIncremental(p.Route())
			st.super.Reset(topo.Row{N: n, Express: st.spans})
		}
		st.search(0, topo.Row{N: n})
	}
	st.best.Evals = st.evals
	st.best.Row = st.best.Row.Canonical()
	return st.best
}

// searcher drives the DFS on two incremental evaluators that mirror the tree
// walk: cur tracks the current partial placement (one span added per include
// descent), and super tracks the bound superset cur + spans[idx:]. The
// superset is invariant along include edges (the span moves from "remaining"
// to "chosen") and loses exactly one span along exclude edges, so every bound
// evaluation re-routes only that one span's dirty region instead of the whole
// row. allSpans is duplicate-free and cur and spans[idx:] partition the chosen
// and remaining candidates, so neither evaluator ever holds a duplicate span.
type searcher struct {
	n, c     int
	p        model.Params
	cur      *route.Incremental // mirrors the current partial placement
	super    *route.Incremental // mirrors cur + spans[idx:]; nil when unused
	spans    []topo.Span
	cuts     []int // express links currently covering each cut
	best     Result
	evals    int64
	useBound bool
}

func (s *searcher) search(idx int, cur topo.Row) {
	// Bound: the superset of the current row plus every remaining span is at
	// least as good as anything in this subtree (adding links never lengthens
	// a shortest path).
	if s.useBound {
		s.evals++
		if s.super.Mean() >= s.best.Mean {
			return
		}
	}
	if idx == len(s.spans) {
		s.evals++
		if m := s.cur.Mean(); m < s.best.Mean {
			s.best.Mean = m
			s.best.Row = cur.Clone()
		}
		return
	}
	sp := s.spans[idx]
	spanBuf := [1]topo.Span{sp}
	// Branch 1: include the span if every covered cut stays within C-1
	// express links.
	feasible := true
	for k := sp.From; k < sp.To; k++ {
		if s.cuts[k]+1 > s.c-1 {
			feasible = false
			break
		}
	}
	if feasible {
		for k := sp.From; k < sp.To; k++ {
			s.cuts[k]++
		}
		s.cur.Update(nil, spanBuf[:])
		s.search(idx+1, cur.Add(sp))
		s.cur.Revert()
		for k := sp.From; k < sp.To; k++ {
			s.cuts[k]--
		}
	}
	// Branch 2: exclude the span. The superset loses sp (it is no longer
	// remaining, and was not chosen).
	if s.useBound {
		s.super.Update(spanBuf[:], nil)
	}
	s.search(idx+1, cur)
	if s.useBound {
		s.super.Revert()
	}
}

// allSpans lists every candidate express span on a row of n routers in
// canonical order.
func allSpans(n int) []topo.Span {
	var out []topo.Span
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			out = append(out, topo.Span{From: i, To: j})
		}
	}
	return out
}

// ExhaustiveMatrix finds the optimum by enumerating every connection matrix
// of P̃(n, C). It exists to validate the paper's claim that the
// connection-matrix space loses no useful solutions: tests assert its optimum
// matches OptimalRow's. Practical only while (n-2)·(C-1) stays small.
func ExhaustiveMatrix(n, c int, p model.Params) Result {
	m := topo.NewConnMatrix(n, c)
	bits := m.Bits()
	if bits > 26 {
		panic(fmt.Sprintf("bnb: exhaustive matrix space 2^%d too large", bits))
	}
	obj := model.RowObjective(p)
	var best Result
	var evals int64
	for code := 0; code < 1<<bits; code++ {
		for b := 0; b < bits; b++ {
			want := code&(1<<b) != 0
			layer, router := b/(n-2), b%(n-2)+1
			m.Set(layer, router, want)
		}
		row := m.Row()
		mean := obj(row)
		evals++
		if evals == 1 || mean < best.Mean {
			best.Mean = mean
			best.Row = row.Canonical()
		}
	}
	best.Evals = evals
	return best
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
