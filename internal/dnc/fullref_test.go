package dnc

import (
	"os"
	"testing"
	"time"

	"explink/internal/bnb"
	"explink/internal/model"
	"explink/internal/topo"
)

// fullGenerator is the pre-incremental reference: the same Procedure I(n, C)
// with every candidate scored by a full scratch-backed evaluation. It exists
// to pin the incremental scan bit-identical (same rows, same means, same eval
// counts) and to back the perf smoke below.
type fullGenerator struct {
	p     model.Params
	obj   func(topo.Row) float64
	evals int64
	memo  map[[2]int]Result
}

func fullInitial(n, c int, p model.Params) Result {
	g := &fullGenerator{p: p, obj: model.RowObjective(p), memo: make(map[[2]int]Result)}
	res := g.solve(n, c)
	res.Evals = g.evals
	return res
}

func (g *fullGenerator) solve(n, c int) Result {
	key := [2]int{n, c}
	if r, ok := g.memo[key]; ok {
		return r
	}
	var res Result
	switch {
	case c <= 1 || n <= 2:
		row := topo.MeshRow(n)
		g.evals++
		res = Result{Row: row, Mean: g.obj(row)}
	case n <= BaseSize:
		b := bnb.OptimalRow(n, c, g.p)
		g.evals += b.Evals
		res = Result{Row: b.Row, Mean: b.Mean}
	default:
		res = g.combine(n, c)
	}
	g.memo[key] = res
	return res
}

func (g *fullGenerator) combine(n, c int) Result {
	h := n / 2
	left := g.solve(h, c-1)
	right := g.solve(n-h, c-1)
	base := topo.Row{N: n}
	base.Express = append(base.Express, left.Row.Express...)
	for _, s := range right.Row.Express {
		base.Express = append(base.Express, topo.Span{From: s.From + h, To: s.To + h})
	}
	best := base
	g.evals++
	bestMean := g.obj(base)
	for i := 0; i < h; i++ {
		for j := h; j < n; j++ {
			if j-i < 2 {
				continue
			}
			cand := base.Add(topo.Span{From: i, To: j})
			g.evals++
			if m := g.obj(cand); m < bestMean {
				bestMean = m
				best = cand
			}
		}
	}
	return Result{Row: best.Canonical(), Mean: bestMean}
}

// TestInitialBitIdenticalToFullEvaluation pins the incremental cross-link
// scan to the full-evaluation reference: same placement, bit-identical mean,
// same evaluation count (the Fig. 7 runtime unit is unchanged).
func TestInitialBitIdenticalToFullEvaluation(t *testing.T) {
	for _, tc := range []struct{ n, c int }{
		{6, 2}, {8, 3}, {8, 4}, {12, 4}, {16, 4}, {16, 8}, {7, 3}, {13, 5}, {32, 4},
	} {
		got := Initial(tc.n, tc.c, p)
		want := fullInitial(tc.n, tc.c, p)
		if !got.Row.Equal(want.Row) {
			t.Fatalf("I(%d,%d) row %v != reference %v", tc.n, tc.c, got.Row, want.Row)
		}
		if got.Mean != want.Mean {
			t.Fatalf("I(%d,%d) mean %v != reference %v (not bit-identical)", tc.n, tc.c, got.Mean, want.Mean)
		}
		if got.Evals != want.Evals {
			t.Fatalf("I(%d,%d) evals %d != reference %d", tc.n, tc.c, got.Evals, want.Evals)
		}
	}
}

// TestDnCNotSlowerThanFullEval is the CI perf smoke for the D&C scan: the
// incremental path must not lose to the full-evaluation reference. Interleaved
// best-of runs absorb scheduler noise; a 10% band absorbs the rest. Gated
// behind EXPLINK_BENCH_SMOKE so regular test runs stay timing-free.
func TestDnCNotSlowerThanFullEval(t *testing.T) {
	if os.Getenv("EXPLINK_BENCH_SMOKE") == "" {
		t.Skip("set EXPLINK_BENCH_SMOKE=1 to run the perf smoke")
	}
	const n, c = 32, 4
	bestInc, bestFull := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 3; round++ {
		t0 := time.Now()
		Initial(n, c, p)
		if d := time.Since(t0); d < bestInc {
			bestInc = d
		}
		t0 = time.Now()
		fullInitial(n, c, p)
		if d := time.Since(t0); d < bestFull {
			bestFull = d
		}
	}
	t.Logf("I(%d,%d): incremental %v, full %v (%.2fx)", n, c, bestInc, bestFull,
		float64(bestFull)/float64(bestInc))
	if float64(bestInc) > float64(bestFull)*1.10 {
		t.Fatalf("incremental D&C slower than full eval: %v vs %v", bestInc, bestFull)
	}
}
