package dnc

import (
	"math"
	"testing"

	"explink/internal/bnb"
	"explink/internal/model"
	"explink/internal/topo"
)

var p = model.DefaultParams()

func TestInitialC1IsMesh(t *testing.T) {
	res := Initial(8, 1, p)
	if !res.Row.Equal(topo.MeshRow(8)) {
		t.Fatalf("I(8,1) = %v", res.Row)
	}
}

func TestInitialBaseCaseIsOptimal(t *testing.T) {
	for _, c := range []int{2, 3, 4} {
		res := Initial(4, c, p)
		opt := bnb.OptimalRow(4, c, p)
		if math.Abs(res.Mean-opt.Mean) > 1e-9 {
			t.Fatalf("I(4,%d) mean %g != optimal %g", c, res.Mean, opt.Mean)
		}
	}
}

func TestInitialFeasible(t *testing.T) {
	for _, tc := range []struct{ n, c int }{
		{8, 2}, {8, 4}, {8, 8}, {8, 16},
		{16, 2}, {16, 4}, {16, 8},
		{7, 3}, {12, 4}, {16, 64},
	} {
		res := Initial(tc.n, tc.c, p)
		if err := res.Row.Validate(tc.c); err != nil {
			t.Fatalf("I(%d,%d): %v", tc.n, tc.c, err)
		}
		if res.Evals <= 0 {
			t.Fatalf("I(%d,%d) evals = %d", tc.n, tc.c, res.Evals)
		}
		// The reported mean must match the row.
		if got := model.RowMean(res.Row, p); math.Abs(got-res.Mean) > 1e-9 {
			t.Fatalf("I(%d,%d) mean mismatch: %g vs %g", tc.n, tc.c, res.Mean, got)
		}
	}
}

func TestInitialImprovesOnMesh(t *testing.T) {
	meshMean := model.RowMean(topo.MeshRow(8), p)
	res := Initial(8, 4, p)
	if res.Mean >= meshMean {
		t.Fatalf("I(8,4) = %g did not beat mesh %g", res.Mean, meshMean)
	}
	// The initial solution should already capture most of the benefit: the
	// paper's Fig. 7 shows D&C_SA starting far below OnlySA.
	opt := bnb.OptimalRow(8, 4, p)
	if res.Mean > opt.Mean*1.25 {
		t.Fatalf("I(8,4) = %g too far from optimal %g", res.Mean, opt.Mean)
	}
}

func TestInitialNeverBelowOptimal(t *testing.T) {
	for _, tc := range []struct{ n, c int }{{6, 2}, {8, 2}, {8, 3}} {
		res := Initial(tc.n, tc.c, p)
		opt := bnb.OptimalRow(tc.n, tc.c, p)
		if res.Mean < opt.Mean-1e-9 {
			t.Fatalf("I(%d,%d) = %g beats the optimum %g: bug in one of them",
				tc.n, tc.c, res.Mean, opt.Mean)
		}
	}
}

func TestInitialMemoReuse(t *testing.T) {
	// Equal halves must be solved once: I(16,4) splits into two I(8,3),
	// which split into I(4,2) four times; with the memo the eval count stays
	// well below the unmemoized recursion.
	res := Initial(16, 4, p)
	// Combination at n=16 costs ~64 evals, at n=8 ~16, base cases small:
	// anything above a few thousand indicates the memo is broken.
	if res.Evals > 5000 {
		t.Fatalf("I(16,4) used %d evals; memo broken?", res.Evals)
	}
}

func TestInitialOddSizes(t *testing.T) {
	for _, n := range []int{5, 7, 9, 11, 13, 15} {
		res := Initial(n, 4, p)
		if err := res.Row.Validate(4); err != nil {
			t.Fatalf("I(%d,4): %v", n, err)
		}
	}
}

func TestInitialPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Initial(8, 0, p)
}

func TestInitialDeterministic(t *testing.T) {
	a := Initial(16, 8, p)
	b := Initial(16, 8, p)
	if !a.Row.Equal(b.Row) || a.Evals != b.Evals {
		t.Fatal("Initial is not deterministic")
	}
}
