// Package dnc implements Procedure I(n, C), the divide-and-conquer
// initial-solution generator of Section 4.4.1: split the row into two halves,
// solve each at link limit C-1 (recursively, with branch and bound at the
// base), then add the single best cross-half express link. Sub-problems at
// limit C-1 guarantee the combined placement stays within C at every
// cross-section, because the one crossing link adds at most one to any cut.
//
// The overall complexity is O(n⁵) = O(N^2.5) as the paper derives with the
// master theorem: O(n²) crossing candidates per combination, each evaluated
// by an O(n³)-class routing pass.
package dnc

import (
	"fmt"

	"explink/internal/bnb"
	"explink/internal/model"
	"explink/internal/route"
	"explink/internal/topo"
)

// BaseSize is the sub-problem size at which recursion stops and branch and
// bound finds the exact local optimum ("if n is small enough", line 2 of the
// procedure; the paper suggests n <= 4).
const BaseSize = 4

// Result carries the initial placement and its evaluation cost.
type Result struct {
	Row   topo.Row
	Mean  float64 // average row head latency of the placement
	Evals int64   // placement evaluations spent, the Fig. 7 runtime unit
}

// Initial generates the initial solution for P̃(n, C).
func Initial(n, c int, p model.Params) Result {
	if n < 1 || c < 1 {
		panic(fmt.Sprintf("dnc: invalid problem P(%d,%d)", n, c))
	}
	g := &generator{p: p, inc: route.NewIncremental(p.Route()), memo: make(map[[2]int]Result)}
	res := g.solve(n, c)
	res.Evals = g.evals
	return res
}

type generator struct {
	p     model.Params
	inc   *route.Incremental // incremental evaluator, reused across combines
	evals int64
	memo  map[[2]int]Result // sub-problem cache: equal halves are solved once
}

func (g *generator) solve(n, c int) Result {
	key := [2]int{n, c}
	if r, ok := g.memo[key]; ok {
		return r
	}
	var res Result
	switch {
	case c <= 1 || n <= 2:
		// No express layer available, or no room for an express span.
		row := topo.MeshRow(n)
		g.evals++
		res = Result{Row: row, Mean: model.RowMean(row, g.p)}
	case n <= BaseSize:
		b := bnb.OptimalRow(n, c, g.p)
		g.evals += b.Evals
		res = Result{Row: b.Row, Mean: b.Mean}
	default:
		res = g.combine(n, c)
	}
	g.memo[key] = res
	return res
}

// combine implements lines 6-13 of Procedure I(n, C): solve the halves at
// C-1 and pick the best single crossing express link. Every candidate is the
// base placement plus exactly one span, so the O(n²) scan runs on the
// incremental evaluator: one full re-route for the base, then per candidate
// only the sources whose paths can cross the added span. Update (not Flip) is
// used because a crossing candidate (i, h) can duplicate a left-half span
// ending at the cut; Row semantics keep the multiset, and a duplicate span
// changes no distance, matching the full evaluation of base.Add bit for bit.
func (g *generator) combine(n, c int) Result {
	h := n / 2
	left := g.solve(h, c-1)
	right := g.solve(n-h, c-1)

	base := topo.Row{N: n}
	base.Express = append(base.Express, left.Row.Express...)
	for _, s := range right.Row.Express {
		base.Express = append(base.Express, topo.Span{From: s.From + h, To: s.To + h})
	}

	g.inc.Reset(base)
	g.evals++
	bestMean := g.inc.Mean()
	bestSpan := topo.Span{}
	haveBest := false
	var spanBuf [1]topo.Span
	for i := 0; i < h; i++ {
		for j := h; j < n; j++ {
			if j-i < 2 {
				continue // adjacent pair is already a local link
			}
			spanBuf[0] = topo.Span{From: i, To: j}
			g.inc.Update(nil, spanBuf[:])
			g.evals++
			m := g.inc.Mean()
			g.inc.Revert()
			if m < bestMean {
				bestMean = m
				bestSpan, haveBest = spanBuf[0], true
			}
		}
	}
	best := base
	if haveBest {
		best = base.Add(bestSpan)
	}
	return Result{Row: best.Canonical(), Mean: bestMean}
}
