// Package runctl defines the run-control error taxonomy shared by the
// simulator (internal/sim) and the placement optimizer (internal/core,
// internal/anneal). Long-running entry points across those packages accept a
// context.Context; when they stop early they return errors that wrap exactly
// one of the sentinels below, so callers can classify outcomes with errors.Is
// without depending on message text.
//
// The taxonomy lives in its own leaf package because both internal/sim and
// internal/core need the same sentinels, and sim's internal tests import core
// (so core cannot import sim without a test-binary import cycle). internal/sim
// re-exports the sentinels under the same names for callers that already
// import it.
package runctl

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrCancelled marks a run stopped by its context (cancellation or
	// deadline) before reaching a natural end. Results returned alongside it
	// are partial but internally consistent.
	ErrCancelled = errors.New("run cancelled")

	// ErrDeadlock marks a run aborted on deadlock suspicion: traffic was in
	// flight but no flit moved for the configured progress timeout.
	ErrDeadlock = errors.New("deadlock suspected")

	// ErrUnstable marks a network that cannot sustain even the probe load of
	// a saturation search (it failed to drain at the lowest offered rate).
	ErrUnstable = errors.New("network unstable")

	// ErrAudit marks a run failed fast by the invariant auditor: a
	// conservation law or routing rule the engine must uphold was violated.
	ErrAudit = errors.New("invariant violated")

	// ErrConfig marks a configuration rejected by validation before any
	// simulation or optimization work started.
	ErrConfig = errors.New("invalid configuration")
)

// Cancelled builds the canonical cancellation error for a context that is
// done: it wraps both ErrCancelled and the context's cause, so callers can
// match either errors.Is(err, ErrCancelled) or
// errors.Is(err, context.DeadlineExceeded).
func Cancelled(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCancelled, context.Cause(ctx))
}
