// Sweep: study how the available bisection bandwidth changes the best
// express-link design (the paper's Fig. 11), sweeping the budget from
// 1 KGb/s to 8 KGb/s at 1 GHz on an 8x8 network.
package main

import (
	"context"
	"fmt"
	"log"

	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/topo"
)

func main() {
	const n = 8
	// Base width = bisection bandwidth / (n * f): 128 bits per KGb/s here.
	budgets := []struct {
		label string
		base  int
	}{
		{"1KGb/s", 128},
		{"2KGb/s", 256},
		{"4KGb/s", 512},
		{"8KGb/s", 1024},
	}

	fmt.Printf("%-8s %12s %12s %8s %10s\n", "budget", "mesh L", "D&C_SA L", "best C", "gain vs mesh")
	for _, b := range budgets {
		cfg := model.DefaultConfig(n)
		cfg.BW = model.Bandwidth{BaseWidth: b.base, MaxWidth: 512, MinWidth: 4}
		solver := core.NewSolver(cfg)

		mesh, err := cfg.EvalRow(topo.MeshRow(n), 1)
		if err != nil {
			log.Fatal(err)
		}
		best, _, err := solver.Optimize(context.Background(), core.DCSA)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.2f %12.2f %8d %9.1f%%\n",
			b.label, mesh.Total, best.Eval.Total, best.C,
			100*(1-best.Eval.Total/mesh.Total))
	}
	fmt.Println("\nThe mesh can only spend extra bandwidth on wider flits (bounded by the")
	fmt.Println("512-bit packet), while express placements convert it into more, narrower")
	fmt.Println("links — the effect behind Fig. 11.")
}
