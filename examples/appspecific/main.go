// Appspecific: the Section 5.6.4 flow — profile an application's traffic on
// the baseline network, then re-optimize every row and column against the
// measured traffic matrix for an application-tuned topology.
package main

import (
	"context"
	"fmt"
	"log"

	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/stats"
	"explink/internal/topo"
	"explink/internal/traffic"
)

func main() {
	const n = 8
	cfg := model.DefaultConfig(n)
	solver := core.NewSolver(cfg)

	// The application whose traffic we know in advance: the ferret proxy,
	// a pipelined workload with long structured hauls that a tuned
	// placement can exploit.
	bench, err := traffic.BenchmarkByName("ferret")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Profile: sample the traffic matrix gamma (in a real system this
	//    comes from performance counters on the baseline mesh).
	gamma := traffic.Matrix(n, bench.Pattern(n), 4000, stats.NewRNG(7))

	// 2. The general-purpose design, oblivious to gamma.
	generic, _, err := solver.Optimize(context.Background(), core.DCSA)
	if err != nil {
		log.Fatal(err)
	}
	genericTopo := solver.Topology(generic)
	genericEval, err := core.WeightedLatency(cfg, genericTopo, generic.C, gamma)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Re-optimize each row and column with the application's weights.
	weights, err := core.WeightsFromMatrix(n, gamma)
	if err != nil {
		log.Fatal(err)
	}
	app, err := solver.SolveWeighted(context.Background(), generic.C, weights, core.DCSA)
	if err != nil {
		log.Fatal(err)
	}
	appTopo := app.Topology
	appEval, err := core.WeightedLatency(cfg, appTopo, generic.C, gamma)
	if err != nil {
		log.Fatal(err)
	}

	mesh, err := core.WeightedLatency(cfg, topo.Mesh(n), 1, gamma)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("traffic-weighted average latency for %s on %dx%d (C=%d):\n",
		bench.Name, n, n, generic.C)
	fmt.Printf("  mesh baseline:          %6.2f cycles\n", mesh.Total)
	fmt.Printf("  general-purpose D&C_SA: %6.2f cycles (%.1f%% vs mesh)\n",
		genericEval.Total, 100*(1-genericEval.Total/mesh.Total))
	fmt.Printf("  application-specific:   %6.2f cycles (additional %.1f%% vs general-purpose, %d evals)\n",
		appEval.Total, 100*(1-appEval.Total/genericEval.Total), app.Evals)

	// Show how the tuned topology differs per row (rows now vary because the
	// hotspot corners skew each row's weights differently).
	fmt.Println("\nper-row placements of the application-specific design:")
	for y, row := range appTopo.Rows {
		fmt.Printf("  row %d: %s\n", y, row)
	}
}
