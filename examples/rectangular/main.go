// Rectangular: the library extension beyond the paper's square networks —
// optimize an 8x4 many-core platform where the two dimensions get different
// express-link placements, and verify the design in the cycle-accurate
// simulator.
package main

import (
	"context"
	"fmt"
	"log"

	"explink/internal/core"
	"explink/internal/sim"
	"explink/internal/topo"
	"explink/internal/traffic"
)

func main() {
	const w, h = 8, 4
	solver := core.NewRectSolver(w, h)

	best, all, err := solver.OptimizeRect(context.Background(), core.DCSA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency vs link limit for the %dx%d platform:\n", w, h)
	for _, sol := range all {
		fmt.Printf("  C=%-3d width=%3db  L_avg=%5.2f cycles\n", sol.C, sol.Eval.Width, sol.Eval.Total)
	}
	mesh, err := solver.Base.Cfg.EvalRectTopology(topo.MeshRect(w, h), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest: C=%d, %.2f cycles (%.1f%% below the %.2f-cycle mesh)\n",
		best.C, best.Eval.Total, 100*(1-best.Eval.Total/mesh.Total), mesh.Total)
	fmt.Printf("row placement (%d routers): %v\n", w, best.Row)
	fmt.Printf("col placement (%d routers): %v\n", h, best.Col)

	// Confirm in the simulator under uniform traffic.
	network := solver.Topology(best)
	cfg := sim.NewConfig(network, best.C, traffic.UniformRandomRect(w, h), 0.02)
	cfg.Warmup, cfg.Measure, cfg.Drain = 1000, 5000, 20000
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	meshCfg := sim.NewConfig(topo.MeshRect(w, h), 1, traffic.UniformRandomRect(w, h), 0.02)
	meshCfg.Warmup, meshCfg.Measure, meshCfg.Drain = 1000, 5000, 20000
	ms, err := sim.New(meshCfg)
	if err != nil {
		log.Fatal(err)
	}
	meshRes, err := ms.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated at rate 0.02 (uniform random):\n")
	fmt.Printf("  mesh:      %6.2f cycles\n", meshRes.AvgPacketLatency)
	fmt.Printf("  optimized: %6.2f cycles\n", res.AvgPacketLatency)
}
