// Parsec: run the cycle-accurate simulator on PARSEC benchmark proxies and
// compare Mesh, HFB and the optimized placement — the workload study of the
// paper's Fig. 6, as a library client.
package main

import (
	"context"
	"fmt"
	"log"

	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/sim"
	"explink/internal/topo"
	"explink/internal/traffic"
)

func main() {
	const n = 8
	cfg := model.DefaultConfig(n)

	// Build the three designs under test.
	solver := core.NewSolver(cfg)
	best, _, err := solver.Optimize(context.Background(), core.DCSA)
	if err != nil {
		log.Fatal(err)
	}
	hfbRow := topo.HFBRow(n)
	designs := []struct {
		name string
		topo topo.Topology
		c    int
	}{
		{"Mesh", topo.Mesh(n), 1},
		{"HFB", topo.Uniform("HFB", n, hfbRow), hfbRow.MaxCrossSection()},
		{"D&C_SA", solver.Topology(best), best.C},
	}

	fmt.Printf("%-14s %10s %10s %10s\n", "benchmark", "Mesh", "HFB", "D&C_SA")
	for _, b := range traffic.Benchmarks() {
		fmt.Printf("%-14s", b.Name)
		for _, d := range designs {
			c := sim.NewConfig(d.topo, d.c, b.Pattern(n), b.InjRate)
			c.Warmup, c.Measure, c.Drain = 1000, 5000, 20000
			s, err := sim.New(c)
			if err != nil {
				log.Fatal(err)
			}
			res, err := s.Run(context.Background())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %9.2f ", res.AvgPacketLatency)
		}
		fmt.Println()
	}
	fmt.Println("\n(average packet latency in cycles; lower is better)")
}
