// Quickstart: optimize express-link placement for an 8x8 mesh NoC and print
// the resulting design — the minimal end-to-end use of the library.
package main

import (
	"context"
	"fmt"
	"log"

	"explink/internal/core"
	"explink/internal/model"
	"explink/internal/topo"
)

func main() {
	// 1. Describe the platform: an 8x8 mesh with the paper's defaults —
	//    3-stage routers, 256-bit links at C=1, and a 1:4 long:short packet
	//    mix.
	cfg := model.DefaultConfig(8)

	// 2. Optimize: sweep every feasible link limit C, solving the
	//    one-dimensional placement problem P̃(8, C) with divide-and-conquer
	//    initialization plus connection-matrix simulated annealing.
	solver := core.NewSolver(cfg)
	best, all, err := solver.Optimize(context.Background(), core.DCSA)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("latency vs link limit:")
	for _, sol := range all {
		fmt.Printf("  C=%-3d width=%3db  L_D=%5.2f  L_S=%5.2f  L_avg=%5.2f\n",
			sol.C, sol.Eval.Width, sol.Eval.Head, sol.Eval.Ser, sol.Eval.Total)
	}

	// 3. Inspect the winning design.
	mesh, err := cfg.EvalRow(topo.MeshRow(cfg.N), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest design: C=%d, %d express links per row/column\n", best.C, len(best.Row.Express))
	fmt.Printf("average packet latency: %.2f cycles (mesh: %.2f, %.1f%% lower)\n",
		best.Eval.Total, mesh.Total, 100*(1-best.Eval.Total/mesh.Total))
	fmt.Printf("\nrow placement:\n%s", best.Row.Diagram())

	// 4. Expand to the full 2D network (the same placement replicates to
	//    every row and column by the paper's 2D->1D lemma).
	network := solver.Topology(best)
	fmt.Printf("\n%s: %d routers, max cross-section %d links, avg router degree %.2f\n",
		network.Name, network.NumRouters(), network.MaxCrossSection(), network.AvgRouterDegree())
}
